//! The format-erased operand view: [`Operands`].
//!
//! Every [`Instruction`](crate::Instruction) can project its operands into a
//! single uniform shape with [`Instruction::operands`](crate::Instruction::operands):
//! class-aware destination/source registers, the immediate, and the CSR
//! address, each present exactly when the instruction's [`Format`] uses the
//! slot. Consumers that only care about dataflow — the executor, the
//! disassembler, dependency analysis in the fuzzer — read this view instead
//! of re-deriving per-format field meanings from raw indices.

use crate::csr::CsrAddr;
use crate::opcode::{Format, Opcode};
use crate::regs::{Fpr, Gpr, Reg};

/// Format-erased operand view of one instruction.
///
/// Built by [`Instruction::operands`](crate::Instruction::operands). A slot
/// is `Some` exactly when the instruction's encoding format carries it:
///
/// | format            | `rd` | `rs1` | `rs2` | `rs3` | `imm`         | `csr` |
/// |-------------------|------|-------|-------|-------|---------------|-------|
/// | R / Fp            | ✓    | ✓     | ✓     |       |               |       |
/// | I / FpLoad        | ✓    | ✓     |       |       | offset        |       |
/// | S / FpStore       |      | ✓     | ✓     |       | offset        |       |
/// | B                 |      | ✓     | ✓     |       | offset        |       |
/// | U / J             | ✓    |       |       |       | imm / offset  |       |
/// | Shamt / ShamtW    | ✓    | ✓     |       |       | shift amount  |       |
/// | Fence             |      |       |       |       | `pred<<4\|succ` |     |
/// | System            |      |       |       |       |               |       |
/// | Csr               | ✓    | ✓     |       |       |               | ✓     |
/// | CsrImm            | ✓    |       |       |       | zero-ext zimm | ✓     |
/// | Amo               | ✓    | ✓     | ✓¹    |       |               |       |
/// | R4                | ✓    | ✓     | ✓     | ✓     |               |       |
/// | FpUnary           | ✓    | ✓     |       |       |               |       |
///
/// ¹ absent for `lr.w`/`lr.d`, whose `rs2` field is a function code.
///
/// Register classes (integer vs floating point) are resolved from the
/// opcode's metadata, so an `fcvt.w.s` reports an integer `rd` and an FP
/// `rs1` without the caller consulting [`Opcode::rd_is_fpr`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operands {
    rd: Option<Reg>,
    rs1: Option<Reg>,
    rs2: Option<Reg>,
    rs3: Option<Fpr>,
    imm: Option<i64>,
    csr: Option<CsrAddr>,
}

impl Operands {
    /// Project an instruction's raw fields into the format-erased view.
    pub(crate) fn project(
        opcode: Opcode,
        rd: u8,
        rs1: u8,
        rs2: u8,
        rs3: u8,
        imm: i64,
        csr: Option<CsrAddr>,
    ) -> Self {
        let class = |is_fpr: bool, index: u8| {
            if is_fpr {
                Reg::F(Fpr::wrapping(index))
            } else {
                Reg::X(Gpr::wrapping(index))
            }
        };
        // The raw rs1 field doubles as the zero-extended immediate of
        // `csrrwi`-style opcodes.
        let zimm = rs1;
        let rd = class(opcode.rd_is_fpr(), rd);
        let rs1 = class(opcode.rs1_is_fpr(), rs1);
        let rs2 = class(opcode.rs2_is_fpr(), rs2);
        let rs3 = Fpr::wrapping(rs3);
        let none = Operands {
            rd: None,
            rs1: None,
            rs2: None,
            rs3: None,
            imm: None,
            csr: None,
        };
        match opcode.format() {
            Format::R | Format::Fp => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                rs2: Some(rs2),
                ..none
            },
            Format::I | Format::FpLoad | Format::Shamt | Format::ShamtW => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                imm: Some(imm),
                ..none
            },
            Format::S | Format::B | Format::FpStore => Operands {
                rs1: Some(rs1),
                rs2: Some(rs2),
                imm: Some(imm),
                ..none
            },
            Format::U | Format::J => Operands {
                rd: Some(rd),
                imm: Some(imm),
                ..none
            },
            Format::Fence => Operands {
                imm: Some(imm),
                ..none
            },
            Format::System => none,
            Format::Csr => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                csr,
                ..none
            },
            // The rs1 field of an immediate-source CSR access holds the
            // 5-bit zero-extended immediate, not a register.
            Format::CsrImm => Operands {
                rd: Some(rd),
                imm: Some(i64::from(zimm)),
                csr,
                ..none
            },
            Format::Amo => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                // Load-reserved repurposes rs2 as a function code.
                rs2: (opcode.encoding().rs2.is_none()).then_some(rs2),
                ..none
            },
            Format::R4 => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                rs2: Some(rs2),
                rs3: Some(rs3),
                ..none
            },
            Format::FpUnary => Operands {
                rd: Some(rd),
                rs1: Some(rs1),
                ..none
            },
        }
    }

    /// The destination register, when the format writes one.
    #[must_use]
    pub fn rd(&self) -> Option<Reg> {
        self.rd
    }

    /// The first source register, when the format reads one.
    #[must_use]
    pub fn rs1(&self) -> Option<Reg> {
        self.rs1
    }

    /// The second source register, when the format reads one.
    #[must_use]
    pub fn rs2(&self) -> Option<Reg> {
        self.rs2
    }

    /// The third source register (fused multiply-add family only).
    #[must_use]
    pub fn rs3(&self) -> Option<Fpr> {
        self.rs3
    }

    /// The immediate operand, when the format carries one: the
    /// sign-extended value for I/S/B/U/J-style formats, the shift amount
    /// for shifts, `pred<<4|succ` for `fence` and the zero-extended 5-bit
    /// immediate for `csrrwi`-style opcodes.
    #[must_use]
    pub fn imm(&self) -> Option<i64> {
        self.imm
    }

    /// The CSR address, for Zicsr opcodes.
    #[must_use]
    pub fn csr(&self) -> Option<CsrAddr> {
        self.csr
    }

    /// The architectural register this instruction defines (writes), if
    /// any.
    ///
    /// RV64 instructions write at most one register. Writes to the
    /// hardwired `x0` carry no dataflow and are reported as `None`.
    #[must_use]
    pub fn defs(&self) -> Option<Reg> {
        self.rd.filter(|r| !matches!(r, Reg::X(g) if g.is_zero()))
    }

    /// The architectural registers this instruction uses (reads), in
    /// `rs1`, `rs2`, `rs3` order.
    ///
    /// Reads of the hardwired `x0` yield the constant zero and carry no
    /// dataflow, so they are skipped.
    pub fn uses(&self) -> impl Iterator<Item = Reg> {
        [self.rs1, self.rs2, self.rs3.map(Reg::F)]
            .into_iter()
            .flatten()
            .filter(|r| !matches!(r, Reg::X(g) if g.is_zero()))
    }
}

#[cfg(test)]
mod tests {
    use crate::imm::BranchOffset;
    use crate::{csr, Fpr, Gpr, Instruction, Opcode, Reg, RoundingMode};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn r_type_view() {
        let ops = Instruction::r_type(Opcode::Add, x(1), x(2), x(3)).operands();
        assert_eq!(ops.rd(), Some(Reg::X(x(1))));
        assert_eq!(ops.rs1(), Some(Reg::X(x(2))));
        assert_eq!(ops.rs2(), Some(Reg::X(x(3))));
        assert_eq!(ops.imm(), None);
        assert_eq!(ops.defs(), Some(Reg::X(x(1))));
        assert_eq!(ops.uses().collect::<Vec<_>>(), [Reg::X(x(2)), Reg::X(x(3))]);
    }

    #[test]
    fn x0_carries_no_dataflow() {
        let ops = Instruction::r_type(Opcode::Add, Gpr::ZERO, Gpr::ZERO, x(3)).operands();
        assert_eq!(ops.rd(), Some(Reg::X(Gpr::ZERO)));
        assert_eq!(ops.defs(), None);
        assert_eq!(ops.uses().collect::<Vec<_>>(), [Reg::X(x(3))]);
    }

    #[test]
    fn store_has_no_def() {
        let ops = Instruction::s_type(Opcode::Sd, x(2), x(3), 8)
            .unwrap()
            .operands();
        assert_eq!(ops.rd(), None);
        assert_eq!(ops.defs(), None);
        assert_eq!(ops.imm(), Some(8));
        assert_eq!(ops.uses().count(), 2);
    }

    #[test]
    fn branch_has_sources_and_offset_only() {
        let off = BranchOffset::new(-16).unwrap();
        let ops = Instruction::b_type(Opcode::Beq, x(1), x(2), off).operands();
        assert_eq!(ops.rd(), None);
        assert_eq!(ops.imm(), Some(-16));
        assert_eq!(ops.uses().count(), 2);
    }

    #[test]
    fn mixed_class_fp_unary_resolves_classes() {
        let insn = Instruction::fp_unary(
            Opcode::FcvtWS,
            Reg::X(x(1)),
            Reg::F(f(2)),
            Some(RoundingMode::Rtz),
        )
        .unwrap();
        let ops = insn.operands();
        assert_eq!(ops.rd(), Some(Reg::X(x(1))));
        assert_eq!(ops.rs1(), Some(Reg::F(f(2))));
        assert_eq!(ops.defs(), Some(Reg::X(x(1))));
    }

    #[test]
    fn r4_exposes_three_fp_sources() {
        let insn = Instruction::r4_type(Opcode::FmaddS, f(1), f(2), f(3), f(4), RoundingMode::Rne);
        let ops = insn.operands();
        assert_eq!(ops.rs3(), Some(f(4)));
        assert_eq!(
            ops.uses().collect::<Vec<_>>(),
            [Reg::F(f(2)), Reg::F(f(3)), Reg::F(f(4))]
        );
    }

    #[test]
    fn csr_imm_has_no_register_source() {
        let insn = Instruction::csr_imm(Opcode::Csrrwi, x(1), csr::FRM, 9).unwrap();
        let ops = insn.operands();
        assert_eq!(ops.rs1(), None);
        assert_eq!(ops.imm(), Some(9));
        assert_eq!(ops.csr(), Some(csr::FRM));
        assert_eq!(ops.uses().count(), 0);
    }

    #[test]
    fn csr_reg_reads_rs1() {
        let insn = Instruction::csr_reg(Opcode::Csrrw, x(1), csr::FCSR, x(2)).unwrap();
        let ops = insn.operands();
        assert_eq!(ops.rs1(), Some(Reg::X(x(2))));
        assert_eq!(ops.imm(), None);
        assert_eq!(ops.csr(), Some(csr::FCSR));
    }

    #[test]
    fn load_reserved_has_no_rs2() {
        let lr = Instruction::amo(Opcode::LrW, x(5), x(7), Gpr::ZERO, false, false).unwrap();
        assert_eq!(lr.operands().rs2(), None);
        let amo = Instruction::amo(Opcode::AmoaddW, x(5), x(7), x(6), false, false).unwrap();
        assert_eq!(amo.operands().rs2(), Some(Reg::X(x(6))));
    }

    #[test]
    fn system_and_fence_views() {
        assert_eq!(Instruction::system(Opcode::Ecall).operands().rd(), None);
        let fence = Instruction::fence(0xF, 0x3).unwrap().operands();
        assert_eq!(fence.imm(), Some(0xF3));
        assert_eq!(fence.uses().count(), 0);
    }

    #[test]
    fn every_opcode_projects_without_panicking() {
        let mut lib = crate::InstructionLibrary::default();
        for &op in Opcode::ALL {
            let insn = lib.synthesize(op);
            let ops = insn.operands();
            // The destination class always matches the opcode metadata.
            if let Some(rd) = ops.rd() {
                assert_eq!(rd.is_fpr(), op.rd_is_fpr(), "{op:?}");
            }
            // defs/uses never yield x0.
            assert!(ops.defs().is_none_or(|r| r != Reg::X(Gpr::ZERO)));
            assert!(ops.uses().all(|r| r != Reg::X(Gpr::ZERO)));
        }
    }
}
