//! Register-index newtypes.

use crate::RiscvError;
use std::fmt;

/// Number of architectural integer registers.
pub const GPR_COUNT: u8 = 32;
/// Number of architectural floating-point registers.
pub const FPR_COUNT: u8 = 32;

/// Index of an integer (x) register, guaranteed to be in `0..32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gpr(u8);

/// Index of a floating-point (f) register, guaranteed to be in `0..32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fpr(u8);

impl Gpr {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Gpr = Gpr(0);
    /// The standard return-address register `x1` (`ra`).
    pub const RA: Gpr = Gpr(1);
    /// The stack pointer `x2` (`sp`).
    pub const SP: Gpr = Gpr(2);

    /// Create a register index, validating that it is below 32.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::InvalidRegisterIndex`] when `index >= 32`.
    pub fn new(index: u8) -> Result<Self, RiscvError> {
        if index < GPR_COUNT {
            Ok(Gpr(index))
        } else {
            Err(RiscvError::InvalidRegisterIndex { index })
        }
    }

    /// Create a register index, wrapping values modulo 32.
    ///
    /// Useful for generators that already produce pseudo-random bytes.
    #[must_use]
    pub fn wrapping(index: u8) -> Self {
        Gpr(index % GPR_COUNT)
    }

    /// The raw index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// True when the register is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over every integer register.
    pub fn all() -> impl Iterator<Item = Gpr> {
        (0..GPR_COUNT).map(Gpr)
    }
}

impl Gpr {
    /// Standard ABI name of the register (`zero`, `ra`, `sp`, …).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[usize::from(self.0)]
    }
}

impl Fpr {
    /// Create a register index, validating that it is below 32.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::InvalidRegisterIndex`] when `index >= 32`.
    pub fn new(index: u8) -> Result<Self, RiscvError> {
        if index < FPR_COUNT {
            Ok(Fpr(index))
        } else {
            Err(RiscvError::InvalidRegisterIndex { index })
        }
    }

    /// Create a register index, wrapping values modulo 32.
    #[must_use]
    pub fn wrapping(index: u8) -> Self {
        Fpr(index % FPR_COUNT)
    }

    /// The raw index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterator over every floating-point register.
    pub fn all() -> impl Iterator<Item = Fpr> {
        (0..FPR_COUNT).map(Fpr)
    }
}

/// A register operand that is either an integer or a floating-point
/// register.
///
/// Used by the mixed-class constructors ([`crate::Instruction::fp_unary`])
/// where the register class depends on the opcode (`fcvt.w.s` reads an FPR
/// and writes a GPR; `fcvt.s.w` does the opposite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// An integer (x) register.
    X(Gpr),
    /// A floating-point (f) register.
    F(Fpr),
}

impl Reg {
    /// The raw index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            Reg::X(r) => r.index(),
            Reg::F(r) => r.index(),
        }
    }

    /// True when the operand is a floating-point register.
    #[must_use]
    pub fn is_fpr(self) -> bool {
        matches!(self, Reg::F(_))
    }
}

impl From<Gpr> for Reg {
    fn from(value: Gpr) -> Self {
        Reg::X(value)
    }
}

impl From<Fpr> for Reg {
    fn from(value: Fpr) -> Self {
        Reg::F(value)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::X(r) => r.fmt(f),
            Reg::F(r) => r.fmt(f),
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<Gpr> for u8 {
    fn from(value: Gpr) -> Self {
        value.0
    }
}

impl From<Fpr> for u8 {
    fn from(value: Fpr) -> Self {
        value.0
    }
}

impl TryFrom<u8> for Gpr {
    type Error = RiscvError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Gpr::new(value)
    }
}

impl TryFrom<u8> for Fpr {
    type Error = RiscvError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Fpr::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_bounds() {
        assert!(Gpr::new(0).is_ok());
        assert!(Gpr::new(31).is_ok());
        assert!(Gpr::new(32).is_err());
        assert!(Gpr::new(255).is_err());
    }

    #[test]
    fn fpr_bounds() {
        assert!(Fpr::new(31).is_ok());
        assert!(Fpr::new(32).is_err());
    }

    #[test]
    fn wrapping_is_modulo() {
        assert_eq!(Gpr::wrapping(33).index(), 1);
        assert_eq!(Fpr::wrapping(64).index(), 0);
    }

    #[test]
    fn zero_register() {
        assert!(Gpr::ZERO.is_zero());
        assert!(!Gpr::RA.is_zero());
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Gpr::all().count(), 32);
        assert_eq!(Fpr::all().count(), 32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gpr::new(5).unwrap().to_string(), "x5");
        assert_eq!(Fpr::new(7).unwrap().to_string(), "f7");
        assert_eq!(Reg::X(Gpr::SP).to_string(), "x2");
        assert_eq!(Reg::F(Fpr::new(3).unwrap()).to_string(), "f3");
    }

    #[test]
    fn abi_names() {
        assert_eq!(Gpr::ZERO.abi_name(), "zero");
        assert_eq!(Gpr::RA.abi_name(), "ra");
        assert_eq!(Gpr::new(10).unwrap().abi_name(), "a0");
        assert_eq!(Gpr::new(31).unwrap().abi_name(), "t6");
    }

    #[test]
    fn reg_carries_class_and_index() {
        let x = Reg::from(Gpr::new(4).unwrap());
        let f = Reg::from(Fpr::new(9).unwrap());
        assert!(!x.is_fpr());
        assert!(f.is_fpr());
        assert_eq!(x.index(), 4);
        assert_eq!(f.index(), 9);
    }
}
