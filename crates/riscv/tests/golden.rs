//! Golden-word tests: hand-assembled machine words checked in both
//! directions (encode produces the word, decode recovers the operands),
//! plus CSR-address checks on the Zicsr decode path.

use tf_riscv::{
    csr, BranchOffset, Fpr, Gpr, Instruction, JumpOffset, Opcode, Reg, RiscvError, RoundingMode,
};

fn x(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

fn fr(i: u8) -> Fpr {
    Fpr::new(i).unwrap()
}

#[track_caller]
fn golden(insn: Instruction, word: u32, disasm: &str) {
    assert_eq!(insn.encode().unwrap(), word, "encode mismatch for {disasm}");
    assert_eq!(
        Instruction::decode(word).unwrap(),
        insn,
        "decode mismatch for {disasm}"
    );
    assert_eq!(insn.to_string(), disasm);
}

#[test]
fn rv64i_golden_words() {
    golden(
        Instruction::i_type(Opcode::Addi, x(1), x(2), -1).unwrap(),
        0xFFF1_0093,
        "addi x1, x2, -1",
    );
    golden(Instruction::nop(), 0x0000_0013, "addi x0, x0, 0");
    golden(
        Instruction::r_type(Opcode::Add, x(1), x(2), x(3)),
        0x0031_00B3,
        "add x1, x2, x3",
    );
    golden(
        Instruction::r_type(Opcode::Sub, x(10), x(11), x(12)),
        0x40C5_8533,
        "sub x10, x11, x12",
    );
    golden(
        Instruction::u_type(Opcode::Lui, x(5), 0x12345).unwrap(),
        0x1234_52B7,
        "lui x5, 0x12345",
    );
    golden(
        Instruction::j_type(Opcode::Jal, x(1), JumpOffset::new(8).unwrap()),
        0x0080_00EF,
        "jal x1, 8",
    );
    golden(
        Instruction::b_type(Opcode::Beq, x(1), x(2), BranchOffset::new(-4).unwrap()),
        0xFE20_8EE3,
        "beq x1, x2, -4",
    );
    golden(
        Instruction::i_type(Opcode::Lw, x(1), x(2), 8).unwrap(),
        0x0081_2083,
        "lw x1, 8(x2)",
    );
    golden(
        Instruction::s_type(Opcode::Sd, x(2), x(3), 8).unwrap(),
        0x0031_3423,
        "sd x3, 8(x2)",
    );
    golden(
        Instruction::shift(Opcode::Srai, x(1), x(2), 7).unwrap(),
        0x4071_5093,
        "srai x1, x2, 7",
    );
    golden(Instruction::system(Opcode::Ecall), 0x0000_0073, "ecall");
    golden(Instruction::system(Opcode::Ebreak), 0x0010_0073, "ebreak");
}

#[test]
fn rv64m_and_a_golden_words() {
    golden(
        Instruction::r_type(Opcode::Mul, x(1), x(2), x(3)),
        0x0231_00B3,
        "mul x1, x2, x3",
    );
    golden(
        Instruction::amo(Opcode::AmoaddW, x(5), x(7), x(6), false, false).unwrap(),
        0x0063_A2AF,
        "amoadd.w x5, x6, (x7)",
    );
    golden(
        Instruction::amo(Opcode::LrD, x(5), x(7), Gpr::ZERO, true, false).unwrap(),
        0x1403_B2AF,
        "lr.d.aq x5, (x7)",
    );
}

#[test]
fn fp_golden_words() {
    golden(
        Instruction::fp_r_type(Opcode::FaddD, fr(1), fr(2), fr(3), Some(RoundingMode::Rne))
            .unwrap(),
        0x0231_00D3,
        "fadd.d f1, f2, f3, rne",
    );
    golden(
        Instruction::fp_unary(
            Opcode::FcvtWS,
            Reg::X(x(1)),
            Reg::F(fr(2)),
            Some(RoundingMode::Rtz),
        )
        .unwrap(),
        0xC001_10D3,
        "fcvt.w.s x1, f2, rtz",
    );
    golden(
        Instruction::r4_type(
            Opcode::FmaddS,
            fr(1),
            fr(2),
            fr(3),
            fr(4),
            RoundingMode::Rne,
        ),
        0x2031_00C3,
        "fmadd.s f1, f2, f3, f4, rne",
    );
    golden(
        Instruction::fp_load(Opcode::Fld, fr(1), x(2), 16).unwrap(),
        0x0101_3087,
        "fld f1, 16(x2)",
    );
}

#[test]
fn zicsr_golden_words_and_addresses() {
    let csrrw = Instruction::csr_reg(Opcode::Csrrw, x(1), csr::FCSR, x(2)).unwrap();
    golden(csrrw, 0x0031_10F3, "csrrw x1, fcsr, x2");
    assert_eq!(csrrw.csr_addr(), Some(csr::FCSR));

    // Decoding must expose the CSR address, and symbolic names must hold
    // for the whole modelled set.
    let decoded = Instruction::decode(0x0031_10F3).unwrap();
    assert_eq!(decoded.csr_addr().and_then(csr::name), Some("fcsr"));

    let csrrsi = Instruction::csr_imm(Opcode::Csrrsi, x(3), csr::MSTATUS, 9).unwrap();
    let word = csrrsi.encode().unwrap();
    let back = Instruction::decode(word).unwrap();
    assert_eq!(back.csr_addr(), Some(csr::MSTATUS));
    assert_eq!(back.rs1(), 9, "zimm must survive the round trip");
    assert_eq!(back.to_string(), "csrrsi x3, mstatus, 9");
}

#[test]
fn reserved_rounding_mode_is_a_decode_error() {
    // fadd.s with rm=0b101: the paper's bug scenario B2 word.
    let word = 0x0031_00D3 & !(0b111 << 12) & !(1 << 25) | 0b101 << 12;
    assert_eq!(
        Instruction::decode(word),
        Err(RiscvError::InvalidRoundingMode { bits: 0b101 })
    );
}
