//! `InstructionLibrary` behaviour tests: category activation and
//! deactivation, and the guarantee that a deactivated category never
//! yields an instruction.

use tf_riscv::{Extension, Format, InstructionLibrary, LibraryConfig, Opcode};

#[test]
fn deactivated_extension_never_yields_an_instruction() {
    for &banned in &Extension::ALL {
        let mut config = LibraryConfig::all();
        config.deactivate_extension(banned);
        let mut lib = InstructionLibrary::new(config, 99);
        for _ in 0..2000 {
            let insn = lib.sample().expect("other extensions stay active");
            assert_ne!(
                insn.opcode().extension(),
                banned,
                "sampled {insn} from deactivated extension {banned}"
            );
        }
    }
}

#[test]
fn deactivated_format_never_yields_an_instruction() {
    let mut config = LibraryConfig::all();
    config
        .deactivate_format(Format::B)
        .deactivate_format(Format::J);
    let mut lib = InstructionLibrary::new(config, 3);
    for _ in 0..2000 {
        let insn = lib.sample().expect("other formats stay active");
        let format = insn.opcode().format();
        assert!(
            format != Format::B && format != Format::J,
            "sampled {insn} from a deactivated format"
        );
    }
}

#[test]
fn runtime_reactivation_restores_a_category() {
    let mut lib = InstructionLibrary::new(LibraryConfig::base_integer(), 17);
    assert!(!lib.contains(Opcode::FaddD));
    let integer_only = lib.len();

    lib.activate_extension(Extension::D);
    assert!(lib.contains(Opcode::FaddD));
    assert!(lib.len() > integer_only);

    lib.deactivate_extension(Extension::D);
    assert!(!lib.contains(Opcode::FaddD));
    assert_eq!(lib.len(), integer_only);
}

#[test]
fn reconfigure_swaps_the_active_set() {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 5);
    assert_eq!(lib.len(), Opcode::ALL.len());

    lib.reconfigure(LibraryConfig::none());
    assert!(lib.is_empty());
    assert!(lib.sample().is_none());

    lib.reconfigure(LibraryConfig::all());
    assert_eq!(lib.len(), Opcode::ALL.len());
    assert!(lib.sample().is_some());
}

#[test]
fn activation_is_intersection_of_extension_and_format() {
    // csrrw is Zicsr + Csr format: deactivating either kills it.
    let mut by_ext = LibraryConfig::all();
    by_ext.deactivate_extension(Extension::Zicsr);
    assert!(!by_ext.allows(Opcode::Csrrw));

    let mut by_fmt = LibraryConfig::all();
    by_fmt.deactivate_format(Format::Csr);
    assert!(!by_fmt.allows(Opcode::Csrrw));
    // The immediate forms use a different format and stay active.
    assert!(by_fmt.allows(Opcode::Csrrwi));
}

#[test]
fn every_opcode_is_reachable_from_the_full_library() {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 1234);
    let mut seen = std::collections::HashSet::new();
    // ~145 opcodes; 40k uniform draws make a miss astronomically unlikely
    // and the stream is deterministic, so this cannot flake.
    for _ in 0..40_000 {
        seen.insert(lib.sample().unwrap().opcode());
    }
    for &op in Opcode::ALL {
        assert!(seen.contains(&op), "{} never sampled", op.mnemonic());
    }
}
