//! Exhaustive encode→decode→encode round-trip property test.
//!
//! Every opcode in the table is exercised with seeded randomized operands
//! (no external dev-dependencies: the library's own deterministic sampler
//! provides the randomness). For each sample we require
//! `decode(encode(i)) == i` and that re-encoding reproduces the identical
//! machine word.

use tf_riscv::{Instruction, InstructionLibrary, LibraryConfig, Opcode};

/// Samples per opcode. With ~145 opcodes this exercises several thousand
/// distinct operand combinations per run, deterministically.
const SAMPLES: usize = 64;

#[test]
fn every_opcode_round_trips_through_its_encoding() {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 0xC0FF_EE00_5EED);
    for &opcode in Opcode::ALL {
        for i in 0..SAMPLES {
            let insn = lib.synthesize(opcode);
            let word = insn.encode().unwrap_or_else(|e| {
                panic!("{} sample {i} failed to encode: {e}", opcode.mnemonic())
            });
            let back = Instruction::decode(word).unwrap_or_else(|e| {
                panic!(
                    "{} sample {i} ({insn}) word {word:#010x} failed to decode: {e}",
                    opcode.mnemonic()
                )
            });
            assert_eq!(
                insn,
                back,
                "{} word {word:#010x} decoded to a different instruction ({back})",
                opcode.mnemonic()
            );
            let word2 = back.encode().expect("re-encode");
            assert_eq!(
                word,
                word2,
                "{} re-encode produced a different word",
                opcode.mnemonic()
            );
        }
    }
}

#[test]
fn sampled_stream_round_trips_and_disassembles() {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 7);
    for _ in 0..2048 {
        let insn = lib.sample().expect("full library is never empty");
        let word = insn.encode().expect("sampled instructions always encode");
        assert_eq!(Instruction::decode(word).unwrap(), insn);
        // The disassembly must be non-empty and start with the mnemonic.
        let text = insn.to_string();
        assert!(
            text.starts_with(insn.opcode().mnemonic()),
            "disasm {text:?} does not start with mnemonic"
        );
    }
}

#[test]
fn decode_is_a_partial_inverse_of_encode_on_raw_words() {
    // Any word that decodes must re-encode to itself: decode never loses
    // operand information. Seeded raw-word sweep, no dev-deps.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut decoded = 0u32;
    for _ in 0..200_000 {
        let word = next() as u32;
        if let Ok(insn) = Instruction::decode(word) {
            decoded += 1;
            assert_eq!(
                insn.encode().expect("decoded instruction re-encodes"),
                word,
                "{insn} did not re-encode to {word:#010x}"
            );
        }
    }
    // Sanity: the sweep must actually hit the decoder, not just reject
    // everything.
    assert!(decoded > 100, "only {decoded} raw words decoded");
}

#[test]
fn encode_lossy_agrees_with_encode_for_every_well_formed_instruction() {
    // `encode_lossy` exists for diagnostics on internally inconsistent
    // instructions, which the typed constructors rule out — so on every
    // constructible instruction it must be the identical encoding.
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 0x10_55_1E);
    for &opcode in Opcode::ALL {
        for _ in 0..8 {
            let insn = lib.synthesize(opcode);
            assert_eq!(
                insn.encode().expect("well-formed"),
                insn.encode_lossy(),
                "{} lossy encoding diverged",
                opcode.mnemonic()
            );
        }
    }
}
