//! Full-table synthesis coverage (ISSUE 3 satellite).
//!
//! `InstructionLibrary::synthesize` is the fuzzer's operand factory: the
//! generator and the corpus mutator both lean on its guarantee that any
//! opcode yields an instruction that encodes. This suite pins that
//! contract for **every** opcode in the table, across many seeds: the
//! synthesized instruction must encode, decode back to the identical
//! value, and disassemble without panicking into text that names its
//! mnemonic and operand registers.

use tf_riscv::{Instruction, InstructionLibrary, LibraryConfig, Opcode, Reg};

/// Seeds per opcode; distinct streams exercise distinct operand draws.
const SEEDS: [u64; 4] = [0, 1, 0xDEAD_BEEF, u64::MAX];
/// Samples per opcode per seed.
const SAMPLES: usize = 32;

#[test]
fn every_opcode_synthesizes_encodes_decodes_and_disassembles() {
    for seed in SEEDS {
        let mut lib = InstructionLibrary::new(LibraryConfig::all(), seed);
        for &opcode in Opcode::ALL {
            for i in 0..SAMPLES {
                let insn = lib.synthesize(opcode);
                assert_eq!(insn.opcode(), opcode, "synthesize changed the opcode");
                let word = insn.encode().unwrap_or_else(|e| {
                    panic!(
                        "{} seed {seed:#x} sample {i} failed to encode: {e}",
                        opcode.mnemonic()
                    )
                });
                let back = Instruction::decode(word).unwrap_or_else(|e| {
                    panic!(
                        "{} seed {seed:#x} word {word:#010x} failed to decode: {e}",
                        opcode.mnemonic()
                    )
                });
                assert_eq!(back, insn, "{} decode mismatch", opcode.mnemonic());
                let text = insn.to_string();
                assert!(
                    text.starts_with(opcode.mnemonic()),
                    "{} disassembly {text:?} does not lead with the mnemonic",
                    opcode.mnemonic()
                );
                // Register operands must be visible in the rendered text
                // with their class prefix (x/f).
                let ops = insn.operands();
                for reg in ops.rd().into_iter().chain(ops.uses()) {
                    let rendered = match reg {
                        Reg::X(g) => format!("x{}", g.index()),
                        Reg::F(f) => format!("f{}", f.index()),
                    };
                    assert!(
                        text.contains(&rendered),
                        "{} disassembly {text:?} omits operand {rendered}",
                        opcode.mnemonic()
                    );
                }
            }
        }
    }
}

#[test]
fn synthesis_is_deterministic_per_seed() {
    let mut a = InstructionLibrary::new(LibraryConfig::all(), 0x5EED);
    let mut b = InstructionLibrary::new(LibraryConfig::all(), 0x5EED);
    for &opcode in Opcode::ALL {
        assert_eq!(a.synthesize(opcode), b.synthesize(opcode));
    }
}
